/**
 * @file
 * The server's (unencrypted) database, preprocessed for PIR.
 *
 * Each entry is a plaintext polynomial in R_P. Preprocessing applies
 * CRT + NTT in advance (paper SII-B "Preprocessing DB"), so RowSel is a
 * pure element-wise multiply-accumulate. Preprocessed storage costs
 * logQ/logP (< 3.5x) more than the raw database, exactly the trade the
 * paper makes.
 *
 * Entries are addressed as entry = k* * D0 + i*, where i* is the
 * initial-dimension index selected by RowSel and k* is the column index
 * selected by ColTor.
 *
 * A Database may hold only a contiguous record-axis slice of the full
 * store (paper SV record-level scale-out): every public accessor takes
 * GLOBAL record ids, so the same fill generator produces identical
 * content whether it runs against the full database or each shard's
 * slice. A full database is simply the slice [0, totalEntries()).
 */

#ifndef IVE_PIR_DATABASE_HH
#define IVE_PIR_DATABASE_HH

#include <functional>
#include <vector>

#include "bfv/bfv.hh"
#include "pir/params.hh"

namespace ive {

class Database
{
  public:
    /** Full database: the slice [0, params.numEntries()). */
    Database(const HeContext &ctx, const PirParams &params);

    /**
     * Empty slice holding records [first_entry, first_entry + count).
     * The range must lie inside [0, params.numEntries()).
     */
    Database(const HeContext &ctx, const PirParams &params,
             u64 first_entry, u64 count);

    /**
     * Copies shard `shard` of `num_shards` record-axis slices. Slice
     * boundaries are exact: shard s starts at total * s / num_shards,
     * so non-divisible record counts split into shards whose sizes
     * differ by at most one record, with no overlap or gap.
     */
    Database slice(u64 shard, u64 num_shards) const;

    /** Record range [first, first + count) a slice of the total. */
    static std::pair<u64, u64> sliceRange(u64 total, u64 shard,
                                          u64 num_shards);

    /** Fills every local entry from a generator (global id, plane). */
    using Generator =
        std::function<std::vector<u64>(u64 entry, int plane)>;
    void fill(const Generator &gen);

    /**
     * Deterministic pseudo-random content (benches, tests). Content is
     * a pure function of (seed, entry, plane), so a sliced database
     * filled with the same seed matches the full one record-for-record.
     */
    static Database random(const HeContext &ctx, const PirParams &params,
                           u64 seed);

    /** Sets one entry (global id) from mod-P coeffs; preprocesses it. */
    void setEntry(u64 entry, int plane, std::span<const u64> coeffs);

    /** Preprocessed (NTT-form, lifted to R_Q) entry polynomial. */
    const RnsPoly &entry(u64 entry, int plane = 0) const;

    /** Recovers the raw mod-P coefficients of an entry (iNTT + iCRT). */
    std::vector<u64> entryCoeffs(u64 entry, int plane = 0) const;

    /** Records held locally (== totalEntries() for a full database). */
    u64 numEntries() const { return count_; }
    /** Global id of the first local record. */
    u64 firstEntry() const { return first_; }
    /** Records in the full store across all slices. */
    u64 totalEntries() const { return params_.numEntries(); }
    int planes() const { return params_.planes; }
    const PirParams &params() const { return params_; }

  private:
    u64 localIndex(u64 entry, int plane) const;

    const HeContext &ctx_;
    PirParams params_;
    u64 first_ = 0; ///< Global id of local record 0.
    u64 count_ = 0; ///< Local record count.
    std::vector<RnsPoly> entries_; ///< plane-major: [plane][local].
};

} // namespace ive

#endif // IVE_PIR_DATABASE_HH

/**
 * @file
 * The server's (unencrypted) database, preprocessed for PIR.
 *
 * Each entry is a plaintext polynomial in R_P. Preprocessing applies
 * CRT + NTT in advance (paper SII-B "Preprocessing DB"), so RowSel is a
 * pure element-wise multiply-accumulate. Preprocessed storage costs
 * logQ/logP (< 3.5x) more than the raw database, exactly the trade the
 * paper makes.
 *
 * Entries are addressed as entry = k* * D0 + i*, where i* is the
 * initial-dimension index selected by RowSel and k* is the column index
 * selected by ColTor.
 */

#ifndef IVE_PIR_DATABASE_HH
#define IVE_PIR_DATABASE_HH

#include <functional>
#include <vector>

#include "bfv/bfv.hh"
#include "pir/params.hh"

namespace ive {

class Database
{
  public:
    Database(const HeContext &ctx, const PirParams &params);

    /** Fills every entry from a generator (entry, plane) -> coeffs. */
    using Generator =
        std::function<std::vector<u64>(u64 entry, int plane)>;
    void fill(const Generator &gen);

    /** Deterministic pseudo-random content (benches, tests). */
    static Database random(const HeContext &ctx, const PirParams &params,
                           u64 seed);

    /** Sets one entry from its mod-P coefficients; preprocesses it. */
    void setEntry(u64 entry, int plane, std::span<const u64> coeffs);

    /** Preprocessed (NTT-form, lifted to R_Q) entry polynomial. */
    const RnsPoly &entry(u64 entry, int plane = 0) const;

    /** Recovers the raw mod-P coefficients of an entry (iNTT + iCRT). */
    std::vector<u64> entryCoeffs(u64 entry, int plane = 0) const;

    u64 numEntries() const { return params_.numEntries(); }
    int planes() const { return params_.planes; }
    const PirParams &params() const { return params_; }

  private:
    const HeContext &ctx_;
    PirParams params_;
    std::vector<RnsPoly> entries_; ///< plane-major: [plane][entry].
};

} // namespace ive

#endif // IVE_PIR_DATABASE_HH

#include "pir/params.hh"

#include "common/logging.hh"

namespace ive {

void
PirParams::validate() const
{
    if (!isPow2(d0))
        fatal("D0 must be a power of two (got %llu)",
              static_cast<unsigned long long>(d0));
    if (d < 0 || d > 40)
        fatal("dimension count d out of range: %d", d);
    if (planes < 1)
        fatal("planes must be >= 1");
    if (!isPow2(he.plainModulus))
        fatal("plaintext modulus must be a power of two");
    if (usedLeaves() > he.n)
        fatal("query does not fit one ring element: D0 + d*l = %llu > "
              "N = %llu",
              static_cast<unsigned long long>(usedLeaves()),
              static_cast<unsigned long long>(he.n));
    if ((u64{1} << expansionDepth()) > he.n)
        fatal("expansion depth exceeds ring degree");
}

PirParams
PirParams::functionalDefault()
{
    PirParams p;
    p.he.n = 4096;
    p.he.plainModulus = u64{1} << 32;
    p.he.logZKs = 13;
    p.he.ellKs = 9;
    p.he.logZRgsw = 14;
    p.he.ellRgsw = 8;
    p.d0 = 256;
    p.d = 8;
    return p;
}

PirParams
PirParams::testSmall()
{
    PirParams p;
    p.he.n = 1024;
    p.he.plainModulus = u64{1} << 32;
    p.he.logZKs = 13;
    p.he.ellKs = 9;
    p.he.logZRgsw = 14;
    p.he.ellRgsw = 8;
    p.d0 = 16;
    p.d = 2;
    return p;
}

PirParams
PirParams::paperPerf(u64 db_bytes, u64 d0)
{
    PirParams p;
    p.he.n = 4096;
    p.he.plainModulus = u64{1} << 32;
    p.he.logZKs = 22;
    p.he.ellKs = 5;
    p.he.logZRgsw = 22;
    p.he.ellRgsw = 5;
    p.d0 = d0;
    u64 entries = divCeil(db_bytes, p.bytesPerPlaintext());
    u64 folded = divCeil(entries, d0);
    p.d = log2Ceil(folded == 0 ? 1 : folded);
    return p;
}

PirParams
PirParams::forDbSize(u64 db_bytes, u64 d0)
{
    PirParams p = functionalDefault();
    p.d0 = d0;
    u64 entries = divCeil(db_bytes, p.bytesPerPlaintext());
    u64 folded = divCeil(entries, d0);
    p.d = log2Ceil(folded == 0 ? 1 : folded);
    return p;
}

} // namespace ive

/**
 * @file
 * KsPIR-like baseline for Table IV.
 *
 * The paper compares IVE against KsPIR [67], characterized as relying
 * on "automorphism, key-switching, and external products". No open
 * implementation of KsPIR was available offline, so this module builds
 * a scheme from the same primitive family with a deliberately
 * key-switching-heavy profile (see DESIGN.md, substitutions):
 *
 *  - a finer initial dimension (D0 = 64), which deepens the external-
 *    product tournament relative to OnionPIR, and
 *  - a key-switching response-compression stage: a partial trace
 *    Tr_t(ct) = ct + Subs(ct, N/2^t + 1), t = 0..steps-1, which zeroes
 *    every coefficient not congruent to 0 mod 2^steps and scales the
 *    survivors by 2^steps. Records occupy only those coefficients, so
 *    the response carries N/2^steps coefficients of payload.
 *
 * The client pre-divides the data slots by 2^steps (mod Q) so the
 * trace's scaling cancels, mirroring the ExpandQuery inverse trick.
 */

#ifndef IVE_PIR_KSPIR_HH
#define IVE_PIR_KSPIR_HH

#include <memory>

#include "pir/server.hh"

namespace ive {

struct KsPirParams
{
    PirParams base;
    int traceSteps = 4; ///< Response compressed to n / 2^steps slots.

    /** Derives an OnionPIR-style base with D0 = 64 for db_bytes. */
    static KsPirParams forDbSize(u64 db_bytes);

    /** Coefficient stride carrying payload (2^traceSteps). */
    u64 slotStride() const { return u64{1} << traceSteps; }
    /** Payload coefficients per entry. */
    u64 slotsPerEntry() const { return base.he.n / slotStride(); }
};

/** Partial trace: keeps coefficients = 0 mod 2^steps, scaled 2^steps. */
BfvCiphertext partialTrace(const HeContext &ctx, const BfvCiphertext &ct,
                           const std::vector<EvkKey> &evks, int steps);

/**
 * End-to-end KsPIR-like instance owning client, database and server.
 * Entry payloads live at coefficient positions j * 2^traceSteps.
 */
class KsPir
{
  public:
    KsPir(const HeContext &ctx, const KsPirParams &params, u64 seed);

    /** Sets entry payload (slotsPerEntry() values mod P). */
    void setEntry(u64 entry, std::span<const u64> slots);
    /** Deterministic pseudo-random payloads for every entry. */
    void fillRandom(u64 seed);

    PirQuery makeQuery(u64 entry);
    BfvCiphertext answer(const PirQuery &query) const;
    /** Decodes the payload slots of the queried entry. */
    std::vector<u64> decode(const BfvCiphertext &response) const;

    /** Expected payload of an entry (for verification). */
    std::vector<u64> expectedSlots(u64 entry) const;

    const KsPirParams &params() const { return params_; }
    const PirServer &server() const { return *server_; }

  private:
    const HeContext &ctx_;
    KsPirParams params_;
    std::unique_ptr<PirClient> client_;
    std::unique_ptr<Database> db_;
    std::unique_ptr<PirServer> server_;
    PirPublicKeys keys_;
};

} // namespace ive

#endif // IVE_PIR_KSPIR_HH

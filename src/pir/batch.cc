#include "pir/batch.hh"

#include "common/thread_pool.hh"
#include "obs/metrics.hh"

namespace ive {

namespace {

double
now()
{
    return static_cast<double>(obs::nowNs()) / 1e9;
}

} // namespace

std::vector<BfvCiphertext>
processBatch(const PirServer &server, const std::vector<PirQuery> &queries,
             int plane)
{
    // Queries are independent; batch-level parallelism takes the
    // coarse lane, and the per-query parallelism inside process()
    // degrades to inline execution on the worker threads.
    std::vector<BfvCiphertext> responses(queries.size());
    parallelFor(0, queries.size(), [&](u64 i) {
        responses[i] = server.process(queries[i], plane);
    });
    return responses;
}

CpuPhaseTimes
measureCpuQuery(const PirServer &server, const PirQuery &query)
{
    CpuPhaseTimes t;

    double t0 = now();
    std::vector<BfvCiphertext> leaves = server.expandQuery(query);
    double t1 = now();
    std::vector<RgswCiphertext> selectors = server.buildSelectors(leaves);
    double t2 = now();
    std::vector<BfvCiphertext> entries = server.rowSel(leaves);
    double t3 = now();
    BfvCiphertext resp = server.colTor(std::move(entries), selectors);
    double t4 = now();
    (void)resp;

    t.expandSec = t1 - t0;
    t.selectorSec = t2 - t1;
    t.rowselSec = t3 - t2;
    t.coltorSec = t4 - t3;
    return t;
}

CpuPhaseTimes
extrapolateCpu(const CpuPhaseTimes &measured,
               const PirParams &measured_params,
               const PirParams &target_params, double core_scale)
{
    auto ratio = [](double target, double base) {
        return base > 0 ? target / base : 0.0;
    };

    double entries_r =
        ratio(static_cast<double>(target_params.numEntries()) *
                  target_params.planes,
              static_cast<double>(measured_params.numEntries()) *
                  measured_params.planes);
    double folds_r =
        ratio(static_cast<double>((u64{1} << target_params.d) - 1) *
                  target_params.planes,
              static_cast<double>((u64{1} << measured_params.d) - 1) *
                  measured_params.planes);
    double expand_r =
        ratio(static_cast<double>(u64{1} << target_params.expansionDepth()),
              static_cast<double>(u64{1}
                                  << measured_params.expansionDepth()));
    double sel_r = ratio(static_cast<double>(target_params.d) *
                             target_params.he.ellRgsw,
                         static_cast<double>(measured_params.d) *
                             measured_params.he.ellRgsw);

    CpuPhaseTimes out;
    out.expandSec = measured.expandSec * expand_r / core_scale;
    out.selectorSec = measured.selectorSec * sel_r / core_scale;
    out.rowselSec = measured.rowselSec * entries_r / core_scale;
    out.coltorSec = measured.coltorSec * folds_r / core_scale;
    return out;
}

} // namespace ive

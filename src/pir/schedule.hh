/**
 * @file
 * Operation schedules for the binary trees of ExpandQuery and ColTor
 * (paper SIV-A, Fig. 7).
 *
 * Both steps walk a binary tree: ColTor reduces 2^d leaves to a root;
 * ExpandQuery is its mirror image (one root expands to 2^L leaves).
 * The *order* in which tree nodes are processed does not change the
 * result, but determines the DRAM traffic for client-specific data:
 *
 *  - BFS maximizes reuse of the per-depth selector (ct_RGSW / evk) but
 *    spills a whole tree level of intermediate ct_BFV per depth.
 *  - DFS keeps intermediates on chip but touches a different selector
 *    at every depth along the walk.
 *  - Hierarchical search (HS) partitions the tree into subtrees whose
 *    working set fits on chip, getting both reuses at once. Within a
 *    subtree either BFS or DFS is used; DFS has the smaller working
 *    set, permitting deeper subtrees (the paper's preferred variant).
 *
 * A schedule is a sequence of TreeOps; sim/traffic.cc replays it
 * against a scratchpad model to count DRAM bytes (Fig. 8), and the
 * functional server can execute ColTor in schedule order to prove
 * order-invariance.
 */

#ifndef IVE_PIR_SCHEDULE_HH
#define IVE_PIR_SCHEDULE_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace ive {

/**
 * One binary-tree node operation.
 *
 * Reduction (ColTor): depth t in [0, d) combines entries
 * e[(j << (t+1))] and e[(j << (t+1)) + (1 << t)] into the former, using
 * selector t. Expansion (ExpandQuery): depth t expands node j of level
 * t into children j and j + 2^t of level t+1, using evk_t.
 */
struct TreeOp
{
    int depth;
    u64 index;

    bool operator==(const TreeOp &o) const = default;
};

enum class ScheduleKind { BFS, DFS, HS };

struct ScheduleConfig
{
    ScheduleKind kind = ScheduleKind::HS;
    /** Subtree traversal inside HS; ignored for plain BFS/DFS. */
    bool subtreeDfs = true;
    /** HS subtree depth; <= 0 lets the caller pick via capacity. */
    int subtreeDepth = 3;

    std::string name() const;
};

/**
 * Schedule for reducing 2^depth_total leaves (ColTor). Ops appear in
 * execution order; every parent follows both children.
 */
std::vector<TreeOp> makeReductionSchedule(int depth_total,
                                          const ScheduleConfig &cfg);

/**
 * Schedule for expanding one root into 2^depth_total leaves
 * (ExpandQuery). Every child-producing op follows the op that produced
 * its input.
 */
std::vector<TreeOp> makeExpansionSchedule(int depth_total,
                                          const ScheduleConfig &cfg);

/** Checks op count and dependency order of a reduction schedule. */
bool validateReductionSchedule(int depth_total,
                               const std::vector<TreeOp> &ops);

/** Checks op count and dependency order of an expansion schedule. */
bool validateExpansionSchedule(int depth_total,
                               const std::vector<TreeOp> &ops);

/**
 * Largest HS subtree depth whose ColTor working set fits `capacity`
 * bytes (paper SIV-A formulas):
 *   BFS subtree: depth*selector + 2^(depth-1)*ct
 *   DFS subtree: depth*selector + (depth+1)*ct
 * Without reduction overlapping, Dcp temporarily needs dcpTemp more
 * bytes, shrinking the budget.
 */
int maxSubtreeDepth(u64 capacity_bytes, u64 selector_bytes, u64 ct_bytes,
                    bool subtree_dfs, u64 dcp_temp_bytes);

} // namespace ive

#endif // IVE_PIR_SCHEDULE_HH

#include "pir/wire.hh"

#include <algorithm>
#include <cmath>

#include "common/bitops.hh"
#include "common/failpoint.hh"
#include "common/logging.hh"
#include "modmath/primes.hh"

namespace ive {

namespace {

/** Largest ring degree the loader will accept (2^20 coefficients). */
constexpr u64 kMaxRingN = u64{1} << 20;
/** RNS primes are ~28-bit; eight already exceed the u128 headroom. */
constexpr u64 kMaxPrimes = 8;
/** Gadget digit counts beyond this make no sense for u128 moduli. */
constexpr u64 kMaxEll = 64;
/** Widest shard fan-out a PartialResponse may claim (2^16 systems). */
constexpr u64 kMaxShards = u64{1} << 16;
/**
 * Cap on the preprocessed database footprint (entries * planes * n *
 * k * 8 bytes) a params blob may imply: ServerSession materializes the
 * whole database in memory, so a hostile blob must not be able to
 * drive an allocation no host could satisfy. 64 GiB is comfortably
 * above every functional configuration in the repo; paper-scale
 * multi-TB stores are the cluster/sharding layer's business.
 */
constexpr u128 kMaxDbWireBytes = u128{1} << 36;
/**
 * Cap on a nested blob (params/keys/query) inside a session-protocol
 * frame. Real key blobs are tens of MiB at paper parameters; 1 GiB
 * bounds what a hostile length field can ask the decoder to allocate
 * (readCount additionally proves the bytes are actually present).
 */
constexpr u64 kMaxNestedBlobBytes = u64{1} << 30;

void
checkRange(ByteReader &r, bool ok, const char *what, u64 value)
{
    if (!ok)
        r.fail(strprintf("%s %llu out of range", what,
                         static_cast<unsigned long long>(value)));
}

/**
 * Throwing mirror of every ive_assert the parameter set will hit on
 * its way through Modulus/RnsBase/NttTable/Gadget/HeContext
 * construction. A params blob that passes here builds a ServerSession
 * without aborting; one that would abort throws SerializeError
 * instead (the reader's never-crash contract).
 */
void
checkConstructible(ByteReader &r, const PirParams &p)
{
    std::vector<u64> primes = p.he.primes;
    if (primes.empty())
        primes = {kIvePrimes.begin(), kIvePrimes.end()};

    double log_q = 0.0;
    for (size_t i = 0; i < primes.size(); ++i) {
        u64 prime = primes[i];
        // Modulus: Barrett constants need q < kMaxModulus; RnsBase:
        // CRT needs actual (distinct) primes; NttTable: 2n | q-1.
        checkRange(r, prime > 1 && prime < kMaxModulus, "prime",
                   prime);
        if (!isPrime(prime))
            r.fail(strprintf("modulus %llu is not prime",
                             static_cast<unsigned long long>(prime)));
        if (prime % (2 * p.he.n) != 1)
            r.fail(strprintf(
                "prime %llu is not NTT-friendly for n = %llu",
                static_cast<unsigned long long>(prime),
                static_cast<unsigned long long>(p.he.n)));
        for (size_t j = 0; j < i; ++j) {
            if (primes[j] == prime)
                r.fail(strprintf("duplicate prime %llu",
                                 static_cast<unsigned long long>(prime)));
        }
        log_q += std::log2(static_cast<double>(prime));
    }
    // RnsBase: 128-bit intermediates (sums of k terms < Q) must fit.
    if (log_q + std::log2(static_cast<double>(primes.size())) >= 127.0)
        r.fail("modulus chain exceeds 128-bit headroom");
    // HeContext: Delta must dominate P or there is no noise room.
    if (log_q <= std::log2(static_cast<double>(p.he.plainModulus)) + 20)
        r.fail("plaintext modulus leaves no noise room under Q");
    // Gadget: base in [2^1, 2^30] and z^ell must cover Q.
    checkRange(r, p.he.logZKs <= 30, "logZKs", p.he.logZKs);
    checkRange(r, p.he.logZRgsw <= 30, "logZRgsw", p.he.logZRgsw);
    if (static_cast<double>(p.he.logZKs) * p.he.ellKs < log_q)
        r.fail("key-switching gadget does not cover Q");
    if (static_cast<double>(p.he.logZRgsw) * p.he.ellRgsw < log_q)
        r.fail("RGSW gadget does not cover Q");
    // Database: bound the preprocessed bytes a blob can demand.
    u128 pre_bytes = static_cast<u128>(p.numEntries()) * p.planes *
                     p.he.n * primes.size() * 8;
    if (pre_bytes > kMaxDbWireBytes)
        r.fail(strprintf("database of %llu x %d plaintexts needs "
                         "%.1f GiB preprocessed, over the wire cap",
                         static_cast<unsigned long long>(p.numEntries()),
                         p.planes,
                         static_cast<double>(pre_bytes) /
                             (1024.0 * 1024.0 * 1024.0)));
}

} // namespace

std::vector<u8>
serializeParams(const PirParams &params)
{
    ByteWriter w;
    w.writeHeader(WireKind::Params);
    w.writeU64(params.he.n);
    w.writeU64(params.he.plainModulus);
    w.writeU32(static_cast<u32>(params.he.logZKs));
    w.writeU32(static_cast<u32>(params.he.ellKs));
    w.writeU32(static_cast<u32>(params.he.logZRgsw));
    w.writeU32(static_cast<u32>(params.he.ellRgsw));
    w.writeU64(params.he.primes.size());
    for (u64 p : params.he.primes)
        w.writeU64(p);
    w.writeU64(params.d0);
    w.writeU32(static_cast<u32>(params.d));
    w.writeU32(static_cast<u32>(params.planes));
    return w.take();
}

PirParams
deserializeParams(std::span<const u8> blob)
{
    ByteReader r(blob);
    r.readHeader(WireKind::Params);
    PirParams p;
    p.he.n = r.readU64();
    checkRange(r, isPow2(p.he.n) && p.he.n >= 4 && p.he.n <= kMaxRingN,
               "ring degree", p.he.n);
    p.he.plainModulus = r.readU64();
    checkRange(r, isPow2(p.he.plainModulus) && p.he.plainModulus >= 2,
               "plaintext modulus", p.he.plainModulus);
    p.he.logZKs = static_cast<int>(r.readU32());
    checkRange(r, p.he.logZKs >= 1 && p.he.logZKs <= 63, "logZKs",
               p.he.logZKs);
    p.he.ellKs = static_cast<int>(r.readU32());
    checkRange(r, p.he.ellKs >= 1 &&
                   static_cast<u64>(p.he.ellKs) <= kMaxEll,
               "ellKs", p.he.ellKs);
    p.he.logZRgsw = static_cast<int>(r.readU32());
    checkRange(r, p.he.logZRgsw >= 1 && p.he.logZRgsw <= 63, "logZRgsw",
               p.he.logZRgsw);
    p.he.ellRgsw = static_cast<int>(r.readU32());
    checkRange(r, p.he.ellRgsw >= 1 &&
                   static_cast<u64>(p.he.ellRgsw) <= kMaxEll,
               "ellRgsw", p.he.ellRgsw);
    u64 num_primes = r.readCount(kMaxPrimes, 8, "prime");
    for (u64 i = 0; i < num_primes; ++i) {
        u64 prime = r.readU64();
        checkRange(r, prime >= 2, "prime", prime);
        p.he.primes.push_back(prime);
    }
    p.d0 = r.readU64();
    checkRange(r, isPow2(p.d0) && p.d0 <= kMaxRingN, "d0", p.d0);
    p.d = static_cast<int>(r.readU32());
    checkRange(r, p.d >= 0 && p.d <= 40, "dimension count", p.d);
    p.planes = static_cast<int>(r.readU32());
    checkRange(r, p.planes >= 1 && p.planes <= (1 << 20), "planes",
               p.planes);
    if (p.usedLeaves() > p.he.n)
        r.fail(strprintf("query does not fit one ring element "
                         "(D0 + d*l = %llu > N = %llu)",
                         static_cast<unsigned long long>(p.usedLeaves()),
                         static_cast<unsigned long long>(p.he.n)));
    checkConstructible(r, p);
    r.expectEnd();
    return p;
}

std::vector<u8>
serializePublicKeys(const HeContext &ctx, const PirPublicKeys &keys)
{
    (void)ctx;
    ByteWriter w;
    w.writeHeader(WireKind::PublicKeys);
    w.writeU64(keys.evks.size());
    for (const EvkKey &evk : keys.evks)
        saveEvkKey(w, evk);
    saveRgswCiphertext(w, keys.rgswOfSecret);
    return w.take();
}

PirPublicKeys
deserializePublicKeys(const HeContext &ctx, std::span<const u8> blob)
{
    ByteReader r(blob);
    r.readHeader(WireKind::PublicKeys);
    PirPublicKeys keys;
    // One evk per expansion-tree level; depth can never exceed log2(n).
    u64 max_evks = log2Exact(ctx.n());
    u64 evk_bytes = 16 + static_cast<u64>(ctx.config().ellKs) *
                             bfvCiphertextWireBytes(ctx.ring());
    u64 num_evks = r.readCount(max_evks, evk_bytes, "evk");
    for (u64 i = 0; i < num_evks; ++i)
        keys.evks.push_back(loadEvkKey(r, ctx));
    keys.rgswOfSecret = loadRgswCiphertext(r, ctx);
    r.expectEnd();
    return keys;
}

std::vector<u8>
serializeQuery(const HeContext &ctx, const PirQuery &query)
{
    (void)ctx;
    ByteWriter w;
    w.writeHeader(WireKind::Query);
    saveBfvCiphertext(w, query.ct);
    return w.take();
}

PirQuery
deserializeQuery(const HeContext &ctx, std::span<const u8> blob)
{
    ByteReader r(blob);
    r.readHeader(WireKind::Query);
    PirQuery q{loadBfvCiphertext(r, ctx.ring())};
    if (!q.ct.a.isNtt() || !q.ct.b.isNtt())
        r.fail("query ciphertext must be in NTT form");
    r.expectEnd();
    return q;
}

std::vector<u8>
serializeResponse(const HeContext &ctx, const PirResponse &response)
{
    (void)ctx;
    ByteWriter w;
    w.writeHeader(WireKind::Response);
    w.writeU64(response.planes.size());
    for (const BfvCiphertext &ct : response.planes)
        saveBfvCiphertext(w, ct);
    std::vector<u8> blob = w.take();
    // Failpoint: flip one byte (arg selects the offset from the end,
    // default the last byte — residue data, so the client's canonical-
    // residue validation or the decoded record catches it). Models a
    // bit flip between serialization and the wire.
    static fail::Failpoint &corrupt =
        fail::point("serialize.response.corrupt");
    if (fail::Hit h = corrupt.evaluate()) {
        // blob is never empty here: the header was just written.
        blob[blob.size() - 1 - (h.arg % blob.size())] ^= 0xFF;
    }
    return blob;
}

PirResponse
deserializeResponse(const HeContext &ctx, std::span<const u8> blob)
{
    ByteReader r(blob);
    r.readHeader(WireKind::Response);
    PirResponse resp;
    u64 planes = r.readCount(u64{1} << 20,
                             bfvCiphertextWireBytes(ctx.ring()),
                             "response plane");
    if (planes == 0)
        r.fail("response has zero planes");
    for (u64 i = 0; i < planes; ++i)
        resp.planes.push_back(loadBfvCiphertext(r, ctx.ring()));
    r.expectEnd();
    return resp;
}

std::vector<u8>
serializePartialResponse(const HeContext &ctx,
                         const PirPartialResponse &partial)
{
    (void)ctx;
    ByteWriter w;
    w.writeHeader(WireKind::PartialResponse);
    w.writeU32(partial.shard);
    w.writeU32(partial.numShards);
    w.writeU64(partial.planes.size());
    for (const BfvCiphertext &ct : partial.planes)
        saveBfvCiphertext(w, ct);
    return w.take();
}

PirPartialResponse
deserializePartialResponse(const HeContext &ctx,
                           std::span<const u8> blob)
{
    ByteReader r(blob);
    r.readHeader(WireKind::PartialResponse);
    PirPartialResponse partial;
    partial.shard = r.readU32();
    partial.numShards = r.readU32();
    // The tournament fold needs a power-of-two fan-out; anything else
    // can only be corruption or a cross-deployment mixup.
    checkRange(r,
               isPow2(partial.numShards) && partial.numShards <= kMaxShards,
               "shard count", partial.numShards);
    if (partial.shard >= partial.numShards)
        r.fail(strprintf("shard index %u out of range for %u shards",
                         partial.shard, partial.numShards));
    u64 planes = r.readCount(u64{1} << 20,
                             bfvCiphertextWireBytes(ctx.ring()),
                             "partial-response plane");
    if (planes == 0)
        r.fail("partial response has zero planes");
    for (u64 i = 0; i < planes; ++i)
        partial.planes.push_back(loadBfvCiphertext(r, ctx.ring()));
    r.expectEnd();
    return partial;
}

namespace {

/** Writes a length-prefixed nested blob into a session frame. */
void
writeNestedBlob(ByteWriter &w, std::span<const u8> blob)
{
    w.writeU64(blob.size());
    w.writeBytes(blob);
}

/**
 * Reads a length-prefixed nested blob. The declared length is checked
 * against the remaining frame bytes before any allocation, and a
 * nested blob must at least hold a wire header — an empty or
 * sub-header "blob" can only be garbage, so it is rejected here
 * instead of deep in a crypto deserializer.
 */
std::vector<u8>
readNestedBlob(ByteReader &r, const char *what)
{
    u64 len = r.readCount(kMaxNestedBlobBytes, 1, what);
    if (len < 6)
        r.fail(strprintf("%s of %llu bytes is too short to be a "
                         "framed blob",
                         what, static_cast<unsigned long long>(len)));
    std::vector<u8> blob(len);
    r.readBytes(blob);
    return blob;
}

} // namespace

std::vector<u8>
serializeHello(const PirHello &hello)
{
    ByteWriter w;
    w.writeHeader(WireKind::Hello);
    w.writeU64(hello.clientId);
    w.writeU64(hello.generation);
    return w.take();
}

PirHello
deserializeHello(std::span<const u8> blob)
{
    ByteReader r(blob);
    r.readHeader(WireKind::Hello);
    PirHello hello;
    hello.clientId = r.readU64();
    hello.generation = r.readU64();
    r.expectEnd();
    return hello;
}

std::vector<u8>
serializeRegisterKeys(const PirRegisterKeys &reg)
{
    ByteWriter w;
    w.writeHeader(WireKind::RegisterKeys);
    w.writeU64(reg.clientId);
    writeNestedBlob(w, reg.paramsBlob);
    writeNestedBlob(w, reg.keyBlob);
    return w.take();
}

PirRegisterKeys
deserializeRegisterKeys(std::span<const u8> blob)
{
    ByteReader r(blob);
    r.readHeader(WireKind::RegisterKeys);
    PirRegisterKeys reg;
    reg.clientId = r.readU64();
    reg.paramsBlob = readNestedBlob(r, "params blob byte");
    reg.keyBlob = readNestedBlob(r, "key blob byte");
    r.expectEnd();
    return reg;
}

std::vector<u8>
serializeQueryRef(const PirQueryRef &ref)
{
    ByteWriter w;
    w.writeHeader(WireKind::QueryRef);
    w.writeU64(ref.clientId);
    w.writeU64(ref.generation);
    writeNestedBlob(w, ref.queryBlob);
    return w.take();
}

PirQueryRef
deserializeQueryRef(std::span<const u8> blob)
{
    ByteReader r(blob);
    r.readHeader(WireKind::QueryRef);
    PirQueryRef ref;
    ref.clientId = r.readU64();
    ref.generation = r.readU64();
    ref.queryBlob = readNestedBlob(r, "query blob byte");
    r.expectEnd();
    return ref;
}

std::vector<u8>
serializeErrorResponse(const PirErrorResponse &err)
{
    ByteWriter w;
    w.writeHeader(WireKind::ErrorResponse);
    w.writeU32(static_cast<u32>(err.code));
    u64 len = std::min<u64>(err.message.size(), kMaxErrorMessageBytes);
    w.writeU64(len);
    w.writeBytes(std::span<const u8>(
        // lint: allow(unchecked-serialize) -- capped char-to-byte view
        reinterpret_cast<const u8 *>(err.message.data()), len));
    return w.take();
}

PirErrorResponse
deserializeErrorResponse(std::span<const u8> blob)
{
    ByteReader r(blob);
    r.readHeader(WireKind::ErrorResponse);
    PirErrorResponse err;
    u32 code = r.readU32();
    checkRange(r,
               code >= static_cast<u32>(NetErrorCode::BadFrame) &&
                   code <= static_cast<u32>(NetErrorCode::Internal),
               "error code", code);
    err.code = static_cast<NetErrorCode>(code);
    u64 len = r.readCount(kMaxErrorMessageBytes, 1, "error message byte");
    err.message.reserve(len);
    for (u64 i = 0; i < len; ++i)
        err.message.push_back(static_cast<char>(r.readU8()));
    r.expectEnd();
    return err;
}

WireKind
peekWireKind(std::span<const u8> blob)
{
    ByteReader r(blob);
    // Reuse the canonical magic/version validation; the kind check in
    // readHeader is an equality test, so probe the byte first.
    if (blob.size() < 6)
        r.fail("truncated reading wire header");
    u8 kind = blob[5];
    if (kind < static_cast<u8>(WireKind::Params) ||
        kind > static_cast<u8>(WireKind::ErrorResponse))
        r.fail(strprintf("unknown wire kind %u", kind));
    r.readHeader(static_cast<WireKind>(kind));
    return static_cast<WireKind>(kind);
}

} // namespace ive

#include "pir/client.hh"

#include "common/logging.hh"

namespace ive {

u64
PirPublicKeys::byteSize(const HeContext &ctx) const
{
    u64 total = 0;
    for (const auto &evk : evks) {
        (void)evk;
        total += EvkKey::byteSize(ctx);
    }
    total += RgswCiphertext::byteSize(ctx, rgswOfSecret.ell);
    return total;
}

PirClient::PirClient(const HeContext &ctx, const PirParams &params,
                     u64 seed)
    : ctx_(ctx), params_(params), rng_(seed), sk_(ctx, rng_)
{
    params_.validate();
    u64 two_pow_l = u64{1} << params_.expansionDepth();
    inv2L_ = ctx.ring().base.inverseResidues(two_pow_l);
}

PirPublicKeys
PirClient::genPublicKeys()
{
    PirPublicKeys keys;
    int depth = params_.expansionDepth();
    for (int t = 0; t < depth; ++t) {
        u64 r = ctx_.n() / (u64{1} << t) + 1;
        keys.evks.push_back(genEvk(ctx_, sk_, rng_, r));
    }
    keys.rgswOfSecret = encryptRgswPoly(ctx_, sk_, rng_, sk_.sNtt());
    return keys;
}

PirQuery
PirClient::makeQuery(u64 entry_index, int extra_inv_pow2)
{
    ive_assert(entry_index < params_.numEntries());
    const Ring &ring = ctx_.ring();
    const Gadget &g = ctx_.gadgetRgsw();

    u64 i_star = entry_index % params_.d0;
    u64 k_star = entry_index / params_.d0;

    RnsPoly payload(ring, Domain::Coeff);

    // Initial dimension: Delta * inv(2^(L + extra)) at coefficient i*.
    std::vector<u64> extra_inv =
        ring.base.inverseResidues(u64{1} << extra_inv_pow2);
    for (int p = 0; p < ring.k(); ++p) {
        const Modulus &mod = ring.base.modulus(p);
        u64 v = mod.mul(ctx_.deltaRns()[p], inv2L_[p]);
        payload.set(p, i_star, mod.mul(v, extra_inv[p]));
    }

    // Subsequent dimensions: bit_t * z^k * inv(2^L) at the gadget slots.
    for (int t = 0; t < params_.d; ++t) {
        u64 bit = (k_star >> t) & 1;
        if (bit == 0)
            continue;
        for (int k = 0; k < g.ell(); ++k) {
            u64 pos = params_.d0 +
                      static_cast<u64>(t) * g.ell() +
                      static_cast<u64>(k);
            auto zk = g.zPowResidues(k);
            for (int p = 0; p < ring.k(); ++p) {
                const Modulus &mod = ring.base.modulus(p);
                payload.set(p, pos, mod.mul(zk[p], inv2L_[p]));
            }
        }
    }

    payload.toNtt(ring);
    return {encryptPayload(ctx_, sk_, rng_, payload)};
}

std::vector<u64>
PirClient::decode(const BfvCiphertext &response) const
{
    return decrypt(ctx_, sk_, response);
}

NoiseReport
PirClient::responseNoise(const BfvCiphertext &response,
                         std::span<const u64> expected) const
{
    return measureNoise(ctx_, sk_, response, expected);
}

} // namespace ive

#include "pir/database.hh"

#include "common/logging.hh"

namespace ive {

Database::Database(const HeContext &ctx, const PirParams &params)
    : ctx_(ctx), params_(params)
{
    params_.validate();
    entries_.resize(params_.numEntries() *
                    static_cast<u64>(params_.planes));
}

void
Database::fill(const Generator &gen)
{
    for (int plane = 0; plane < params_.planes; ++plane) {
        for (u64 e = 0; e < params_.numEntries(); ++e) {
            std::vector<u64> coeffs = gen(e, plane);
            setEntry(e, plane, coeffs);
        }
    }
}

Database
Database::random(const HeContext &ctx, const PirParams &params, u64 seed)
{
    Database db(ctx, params);
    Rng rng(seed);
    std::vector<u64> coeffs(ctx.n());
    for (int plane = 0; plane < params.planes; ++plane) {
        for (u64 e = 0; e < params.numEntries(); ++e) {
            for (auto &c : coeffs)
                c = rng.uniform(ctx.plainModulus());
            db.setEntry(e, plane, coeffs);
        }
    }
    return db;
}

void
Database::setEntry(u64 entry, int plane, std::span<const u64> coeffs)
{
    ive_assert(entry < params_.numEntries());
    ive_assert(plane < params_.planes);
    ive_assert(coeffs.size() == ctx_.n());
    entries_[static_cast<u64>(plane) * params_.numEntries() + entry] =
        liftPlain(ctx_, coeffs);
}

const RnsPoly &
Database::entry(u64 entry, int plane) const
{
    ive_assert(entry < params_.numEntries());
    ive_assert(plane < params_.planes);
    return entries_[static_cast<u64>(plane) * params_.numEntries() +
                    entry];
}

std::vector<u64>
Database::entryCoeffs(u64 entry, int plane) const
{
    const Ring &ring = ctx_.ring();
    RnsPoly p = this->entry(entry, plane);
    p.fromNtt(ring);
    std::vector<u64> out(ring.n);
    std::vector<u64> res(ring.k());
    for (u64 i = 0; i < ring.n; ++i) {
        p.coeffResidues(i, res);
        // Raw values are < P << Q, so iCRT recovers them exactly.
        out[i] = static_cast<u64>(ring.base.fromRns(res));
    }
    return out;
}

} // namespace ive

#include "pir/database.hh"

#include "common/logging.hh"

namespace ive {

Database::Database(const HeContext &ctx, const PirParams &params)
    : Database(ctx, params, 0, params.numEntries())
{
}

Database::Database(const HeContext &ctx, const PirParams &params,
                   u64 first_entry, u64 count)
    : ctx_(ctx), params_(params), first_(first_entry), count_(count)
{
    params_.validate();
    ive_assert(first_ <= params_.numEntries());
    ive_assert(count_ <= params_.numEntries() - first_);
    entries_.resize(count_ * static_cast<u64>(params_.planes));
}

std::pair<u64, u64>
Database::sliceRange(u64 total, u64 shard, u64 num_shards)
{
    ive_assert(num_shards >= 1 && shard < num_shards);
    // Exact boundaries: begin_{s+1} == begin_s of the next shard, so
    // non-divisible totals split with no overlap or gap and sizes that
    // differ by at most one record.
    u64 begin = total / num_shards * shard +
                total % num_shards * shard / num_shards;
    u64 end = total / num_shards * (shard + 1) +
              total % num_shards * (shard + 1) / num_shards;
    return {begin, end - begin};
}

Database
Database::slice(u64 shard, u64 num_shards) const
{
    ive_assert(first_ == 0 && count_ == params_.numEntries(),
               "slice() must start from the full database");
    auto [begin, count] = sliceRange(count_, shard, num_shards);
    Database out(ctx_, params_, begin, count);
    for (int plane = 0; plane < params_.planes; ++plane) {
        for (u64 e = 0; e < count; ++e)
            out.entries_[static_cast<u64>(plane) * count + e] =
                entries_[static_cast<u64>(plane) * count_ + begin + e];
    }
    return out;
}

void
Database::fill(const Generator &gen)
{
    for (int plane = 0; plane < params_.planes; ++plane) {
        for (u64 e = 0; e < count_; ++e) {
            std::vector<u64> coeffs = gen(first_ + e, plane);
            setEntry(first_ + e, plane, coeffs);
        }
    }
}

Database
Database::random(const HeContext &ctx, const PirParams &params, u64 seed)
{
    Database db(ctx, params);
    db.fill([&](u64 entry, int plane) {
        // Per-(entry, plane) stream: content is independent of fill
        // order, so slices and the full store agree record-for-record.
        Rng rng(seed + entry * 0x9e3779b97f4a7c15ULL +
                static_cast<u64>(plane) * 0xbf58476d1ce4e5b9ULL);
        std::vector<u64> coeffs(ctx.n());
        for (auto &c : coeffs)
            c = rng.uniform(ctx.plainModulus());
        return coeffs;
    });
    return db;
}

u64
Database::localIndex(u64 entry, int plane) const
{
    ive_assert(entry >= first_ && entry - first_ < count_);
    ive_assert(plane >= 0 && plane < params_.planes);
    return static_cast<u64>(plane) * count_ + (entry - first_);
}

void
Database::setEntry(u64 entry, int plane, std::span<const u64> coeffs)
{
    ive_assert(coeffs.size() == ctx_.n());
    entries_[localIndex(entry, plane)] = liftPlain(ctx_, coeffs);
}

const RnsPoly &
Database::entry(u64 entry, int plane) const
{
    return entries_[localIndex(entry, plane)];
}

std::vector<u64>
Database::entryCoeffs(u64 entry, int plane) const
{
    const Ring &ring = ctx_.ring();
    RnsPoly p = this->entry(entry, plane);
    p.fromNtt(ring);
    std::vector<u64> out(ring.n);
    std::vector<u64> res(ring.k());
    for (u64 i = 0; i < ring.n; ++i) {
        p.coeffResidues(i, res);
        // Raw values are < P << Q, so iCRT recovers them exactly.
        out[i] = static_cast<u64>(ring.base.fromRns(res));
    }
    return out;
}

} // namespace ive

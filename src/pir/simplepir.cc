#include "pir/simplepir.hh"

#include <cmath>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace ive {

SimplePirParams
SimplePirParams::forDbSize(u64 db_bytes)
{
    SimplePirParams p;
    u64 side = static_cast<u64>(
        std::ceil(std::sqrt(static_cast<double>(db_bytes))));
    p.rows = side;
    p.cols = divCeil(db_bytes, side);
    return p;
}

SimplePir::SimplePir(const SimplePirParams &params, u64 seed)
    : params_(params), rng_(seed)
{
    ive_assert(params_.rows > 0 && params_.cols > 0);
    ive_assert(isPow2(params_.p) && params_.p <= 4096);
    db_.assign(params_.rows * params_.cols, 0);
    a_.resize(params_.cols * params_.lweDim);
    for (auto &v : a_)
        v = static_cast<u32>(rng_.next());
}

void
SimplePir::fillRandom()
{
    for (auto &v : db_)
        v = static_cast<u8>(rng_.next() % params_.p);
}

void
SimplePir::setEntry(u64 row, u64 col, u8 value)
{
    ive_assert(row < params_.rows && col < params_.cols);
    ive_assert(value < params_.p);
    db_[row * params_.cols + col] = value;
}

u8
SimplePir::entryAt(u64 row, u64 col) const
{
    return db_[row * params_.cols + col];
}

void
SimplePir::computeHint()
{
    hint_.assign(params_.rows * params_.lweDim, 0);
    for (u64 r = 0; r < params_.rows; ++r) {
        const u8 *row = db_.data() + r * params_.cols;
        u32 *out = hint_.data() + r * params_.lweDim;
        for (u64 c = 0; c < params_.cols; ++c) {
            u32 v = row[c];
            if (v == 0)
                continue;
            const u32 *arow = a_.data() + c * params_.lweDim;
            for (u64 k = 0; k < params_.lweDim; ++k)
                out[k] += v * arow[k]; // mod 2^32 wraps naturally
        }
    }
    hintReady_ = true;
}

std::vector<u32>
SimplePir::makeQuery(u64 col, ClientState &state, Rng &rng) const
{
    ive_assert(col < params_.cols);
    state.col = col;
    state.secret.resize(params_.lweDim);
    for (auto &v : state.secret)
        v = static_cast<u32>(rng.next());

    std::vector<u32> qu(params_.cols, 0);
    for (u64 c = 0; c < params_.cols; ++c) {
        const u32 *arow = a_.data() + c * params_.lweDim;
        u32 acc = 0;
        for (u64 k = 0; k < params_.lweDim; ++k)
            acc += arow[k] * state.secret[k];
        // Centered-binomial error, sigma ~3.2.
        u32 e = static_cast<u32>(rng.cbdNoise(u64{1} << 32));
        qu[c] = acc + e;
    }
    qu[col] += params_.delta();
    return qu;
}

std::vector<u32>
SimplePir::answer(const std::vector<u32> &query) const
{
    ive_assert(query.size() == params_.cols);
    std::vector<u32> ans(params_.rows, 0);
    for (u64 r = 0; r < params_.rows; ++r) {
        const u8 *row = db_.data() + r * params_.cols;
        u32 acc = 0;
        for (u64 c = 0; c < params_.cols; ++c)
            acc += static_cast<u32>(row[c]) * query[c];
        ans[r] = acc;
    }
    return ans;
}

u8
SimplePir::recover(const std::vector<u32> &ans, const ClientState &state,
                   u64 row) const
{
    ive_assert(hintReady_);
    const u32 *hrow = hint_.data() + row * params_.lweDim;
    u32 hs = 0;
    for (u64 k = 0; k < params_.lweDim; ++k)
        hs += hrow[k] * state.secret[k];
    u32 noisy = ans[row] - hs; // Delta*value + error (mod 2^32)
    u32 delta = params_.delta();
    u64 value = (static_cast<u64>(noisy) + delta / 2) / delta;
    return static_cast<u8>(value % params_.p);
}

} // namespace ive

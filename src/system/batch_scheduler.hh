/**
 * @file
 * Waiting-window batch scheduler under Poisson load (paper SV and
 * SVI-F, Fig. 14b).
 *
 * Queries arrive as a Poisson process. The scheduler opens a waiting
 * window when the first query of a batch arrives and dispatches when
 * the window expires or the batch is full; the window is sized from
 * the RowSel DB-access time, bounding the batching latency overhead to
 * about 2x while preserving the throughput gains.
 */

#ifndef IVE_SYSTEM_BATCH_SCHEDULER_HH
#define IVE_SYSTEM_BATCH_SCHEDULER_HH

#include <functional>
#include <vector>

#include "common/types.hh"

namespace ive {

struct SchedulerConfig
{
    double windowSec = 0.032;
    int maxBatch = 64;

    // Admission control (live ShardDispatcher only; the discrete-event
    // simulator models an unbounded queue and ignores these).
    /**
     * Queue high-water mark: submits arriving while maxQueue queries
     * already wait are shed with a typed ive::Overloaded instead of
     * growing the queue without bound. 0 = unbounded (legacy).
     */
    int maxQueue = 0;
    /**
     * Per-query deadline in seconds, inherited through the waiting
     * window: a query whose deadline passes before its batch
     * dispatches is dropped with ive::DeadlineExceeded rather than
     * served late. 0 = no deadline.
     */
    double queryDeadlineSec = 0.0;
};

/** Service latency for a batch of the given size (from the simulator). */
using ServiceModel = std::function<double(int batch_size)>;

struct LoadPoint
{
    double offeredQps = 0.0;
    double avgLatencySec = 0.0;
    double maxLatencySec = 0.0;
    double completedQps = 0.0;
    double avgBatch = 0.0;
    bool saturated = false; ///< Arrival rate exceeded service rate.
};

/**
 * Discrete-event simulation of the scheduler at one offered load.
 * num_queries arrivals are generated; the run is marked saturated when
 * the backlog grows without bound (latency exceeding 50x the window).
 */
LoadPoint simulateLoad(const ServiceModel &service,
                       const SchedulerConfig &cfg, double offered_qps,
                       int num_queries, u64 seed);

/** Sweeps offered loads; one LoadPoint per entry (Fig. 14b curve). */
std::vector<LoadPoint>
loadCurve(const ServiceModel &service, const SchedulerConfig &cfg,
          const std::vector<double> &offered_qps, int num_queries,
          u64 seed);

} // namespace ive

#endif // IVE_SYSTEM_BATCH_SCHEDULER_HH

/**
 * @file
 * Scale-out IVE cluster with record-level parallelism (paper SV).
 *
 * num_systems IVE systems hang off a central PCIe switch. The DB
 * matrix is partitioned along the D/D0 axis; each system runs RowSel
 * plus the local part of ColTor on its slice, then the partial results
 * (one ciphertext per system per query) are gathered onto one system
 * for the final log2(num_systems) tournament levels. Gather traffic is
 * a single ciphertext per system per query, so scaling is near-linear.
 */

#ifndef IVE_SYSTEM_CLUSTER_HH
#define IVE_SYSTEM_CLUSTER_HH

#include "sim/pir_program.hh"

namespace ive {

struct ClusterResult
{
    int systems = 1;
    PirSimResult perSystem; ///< The per-slice pipeline.
    double gatherSec = 0.0;
    double finalFoldSec = 0.0;
    double latencySec = 0.0;
    double qps = 0.0;
    double qpsPerSystem = 0.0;
};

/**
 * Simulates PIR over a raw database of db_bytes spread across
 * `systems` IVE systems (systems must be a power of two).
 */
ClusterResult simulateCluster(u64 db_bytes, int systems,
                              const IveConfig &cfg, int batch,
                              u64 d0 = 256);

} // namespace ive

#endif // IVE_SYSTEM_CLUSTER_HH

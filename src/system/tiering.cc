#include "system/tiering.hh"

namespace ive {

TieringDecision
placeDatabase(const PirParams &params, const IveConfig &cfg, int batch)
{
    TieringDecision d;
    ObjectSizes sizes = objectSizes(params, cfg);
    d.dbBytesRaw = params.dbBytes();
    d.dbBytesPreprocessed = sizes.dbBytes;

    u64 client = static_cast<u64>(batch) * sizes.clientUploadBytes * 2;
    d.dbOnLpddr = cfg.hasLpddr &&
                  d.dbBytesPreprocessed + client > cfg.hbmCapacity;

    double expansion =
        static_cast<double>(d.dbBytesPreprocessed) / d.dbBytesRaw;
    u64 cap = cfg.hasLpddr ? cfg.lpddrCapacity : cfg.hbmCapacity;
    d.maxRawDbBytes = static_cast<u64>(cap / expansion);
    d.fits = d.dbBytesPreprocessed <= cap;

    double bw =
        d.dbOnLpddr ? cfg.lpddrBytesPerSec : cfg.hbmBytesPerSec;
    d.scanSec = static_cast<double>(d.dbBytesPreprocessed) / bw;
    return d;
}

} // namespace ive

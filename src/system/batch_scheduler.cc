#include "system/batch_scheduler.hh"

#include <algorithm>
#include <deque>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"

namespace ive {

LoadPoint
simulateLoad(const ServiceModel &service, const SchedulerConfig &cfg,
             double offered_qps, int num_queries, u64 seed)
{
    ive_assert(offered_qps > 0.0 && num_queries > 0);
    Rng rng(seed);

    // Arrival times.
    std::vector<double> arrivals(num_queries);
    double t = 0.0;
    for (int i = 0; i < num_queries; ++i) {
        t += rng.exponential(offered_qps);
        arrivals[i] = t;
    }

    LoadPoint pt;
    pt.offeredQps = offered_qps;

    double server_free = 0.0;
    double latency_sum = 0.0;
    double latency_max = 0.0;
    double batch_sum = 0.0;
    int batches = 0;
    double last_completion = 0.0;

    size_t next = 0;
    double horizon_latency_cap =
        std::max(50.0 * cfg.windowSec, 100.0 * service(1));
    while (next < arrivals.size()) {
        double first_arrival = arrivals[next];
        // The batch closes when the window after its first query
        // expires or maxBatch queries have arrived, whichever first;
        // it cannot start before the server is free.
        double window_close = first_arrival + cfg.windowSec;
        size_t take = 1;
        while (next + take < arrivals.size() &&
               static_cast<int>(take) < cfg.maxBatch &&
               arrivals[next + take] <=
                   std::max(window_close, server_free)) {
            ++take;
        }
        double ready = static_cast<int>(take) >= cfg.maxBatch
                           ? arrivals[next + take - 1]
                           : std::max(window_close, first_arrival);
        double start = std::max({ready, server_free, first_arrival});
        double done = start + service(static_cast<int>(take));
        server_free = done;
        last_completion = done;

        for (size_t i = 0; i < take; ++i) {
            double lat = done - arrivals[next + i];
            latency_sum += lat;
            latency_max = std::max(latency_max, lat);
        }
        batch_sum += static_cast<double>(take);
        ++batches;
        next += take;

        if (latency_max > horizon_latency_cap) {
            pt.saturated = true;
            break;
        }
    }

    size_t completed = next;
    pt.avgLatencySec =
        completed ? latency_sum / static_cast<double>(completed) : 0.0;
    pt.maxLatencySec = latency_max;
    pt.avgBatch = batches ? batch_sum / batches : 0.0;
    pt.completedQps = last_completion > 0.0
                          ? static_cast<double>(completed) /
                                last_completion
                          : 0.0;
    return pt;
}

std::vector<LoadPoint>
loadCurve(const ServiceModel &service, const SchedulerConfig &cfg,
          const std::vector<double> &offered_qps, int num_queries,
          u64 seed)
{
    // Load points are independent simulations with their own Rng; run
    // them on the thread pool. The service model must be thread-safe
    // (the analytic models used here are pure functions).
    std::vector<LoadPoint> out(offered_qps.size());
    parallelFor(0, offered_qps.size(), [&](u64 i) {
        out[i] =
            simulateLoad(service, cfg, offered_qps[i], num_queries, seed);
    });
    return out;
}

} // namespace ive

/**
 * @file
 * Heterogeneous-memory database placement (paper SV, scale-up).
 *
 * Databases whose preprocessed form fits HBM are served from HBM;
 * larger ones are offloaded to the LPDDR expanders and streamed during
 * RowSel, while HBM keeps serving the memory-bound client-specific
 * steps. Batching amortizes the DB scan, so the lower LPDDR bandwidth
 * costs little at saturation (Fig. 13d).
 */

#ifndef IVE_SYSTEM_TIERING_HH
#define IVE_SYSTEM_TIERING_HH

#include "sim/core.hh"

namespace ive {

struct TieringDecision
{
    bool dbOnLpddr = false;
    u64 dbBytesRaw = 0;
    u64 dbBytesPreprocessed = 0;
    double scanSec = 0.0; ///< One full-DB read at the serving tier.
    bool fits = true;     ///< DB fits this system at all.
    u64 maxRawDbBytes = 0;///< Largest raw DB one system supports.
};

TieringDecision placeDatabase(const PirParams &params,
                              const IveConfig &cfg, int batch);

} // namespace ive

#endif // IVE_SYSTEM_TIERING_HH

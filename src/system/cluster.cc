#include "system/cluster.hh"

#include "common/logging.hh"

namespace ive {

ClusterResult
simulateCluster(u64 db_bytes, int systems, const IveConfig &cfg,
                int batch, u64 d0)
{
    ive_assert(systems >= 1 && isPow2(static_cast<u64>(systems)));
    ClusterResult res;
    res.systems = systems;

    // Record-level parallelism: each system owns a D/(D0*S) x D0 slice.
    PirParams slice = PirParams::paperPerf(db_bytes / systems, d0);
    SimOptions opts;
    opts.batch = batch;
    res.perSystem = simulatePir(slice, cfg, opts);

    if (systems == 1) {
        res.latencySec = res.perSystem.latencySec;
        res.qps = res.perSystem.qps;
        res.qpsPerSystem = res.qps;
        return res;
    }

    ObjectSizes sizes = objectSizes(slice, cfg);

    // Gather: every other system ships one ciphertext per query to the
    // finalizing system through the central switch.
    double gather_bytes = static_cast<double>(systems - 1) * batch *
                          sizes.ctBytes;
    res.gatherSec = gather_bytes / cfg.pcieBytesPerSec;

    // Final tournament: (systems - 1) external products per query on
    // the finalizing system, queries spread across its cores.
    double folds_per_query = systems - 1;
    double kn = static_cast<double>(slice.he.primes.empty()
                                        ? 4
                                        : slice.he.primes.size()) *
                slice.he.n;
    int lr = slice.he.ellRgsw;
    // Dominant unit occupancy per external product (cycles).
    auto units = makeUnitTable(cfg);
    double ntt_cyc = (2 + 2 * lr) * kn /
                     (units[static_cast<int>(FuKind::SysNttu)].throughput *
                      units[static_cast<int>(FuKind::SysNttu)].copies);
    double ewu_cyc = (2.0 * 2 * lr + 4) * kn /
                     units[static_cast<int>(FuKind::Ewu)].throughput;
    double fold_cyc = std::max(ntt_cyc, ewu_cyc);
    int qpc = static_cast<int>(divCeil(batch, cfg.cores));
    res.finalFoldSec =
        folds_per_query * fold_cyc * qpc / cfg.clockHz();

    res.latencySec =
        res.perSystem.latencySec + res.gatherSec + res.finalFoldSec;
    res.qps = batch / res.latencySec;
    res.qpsPerSystem = res.qps / systems;
    return res;
}

} // namespace ive

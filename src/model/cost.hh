/**
 * @file
 * Area/power cost model (paper Table II, SIV-G, SVI-C/E).
 *
 * The paper derives hardware cost from RTL synthesis in a 7nm
 * predictive PDK plus FinCACTI for SRAM. Offline we substitute a
 * component-level analytic model whose per-component constants are
 * calibrated so the flagship 32-core configuration reproduces Table II
 * exactly; the *structure* (which components scale with which knobs)
 * then predicts the ablations:
 *
 *  - special primes shrink every modular multiplier by 9.1% (SIV-G);
 *  - the unified sysNTTU adds 1.4% to an NTT unit but removes the
 *    standalone GEMM array a separate-unit design needs (SVI-C);
 *  - the ARK-like baseline has 64 smaller cores with MADUs and 2 MB
 *    scratchpads (SVI-E).
 */

#ifndef IVE_MODEL_COST_HH
#define IVE_MODEL_COST_HH

#include <string>
#include <vector>

#include "sim/config.hh"

namespace ive {

struct ComponentCost
{
    std::string name;
    double areaMm2 = 0.0;
    double watts = 0.0;
};

struct ChipCost
{
    std::vector<ComponentCost> perCore; ///< One core's components.
    double coreAreaMm2 = 0.0;
    double coreWatts = 0.0;
    double coresAreaMm2 = 0.0;
    double coresWatts = 0.0;
    double nocAreaMm2 = 0.0;
    double nocWatts = 0.0;
    double hbmAreaMm2 = 0.0;
    double hbmWatts = 0.0;
    double totalAreaMm2 = 0.0;
    double totalWatts = 0.0;
};

/** Chip cost for an accelerator configuration. */
ChipCost chipCost(const IveConfig &cfg);

/** Energy-delay-area product helper (Fig. 14a). */
double edap(double energy_j, double delay_s, double area_mm2);

} // namespace ive

#endif // IVE_MODEL_COST_HH

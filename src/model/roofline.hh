/**
 * @file
 * GPU roofline execution model (paper Fig. 6 and the GPU rows of
 * Fig. 12).
 *
 * Phase time = max(mults / peak-mult-throughput, bytes / memory-BW).
 * Byte counts come from the same object sizes the functional code
 * uses, at 4-byte GPU words; batching divides the database bytes but
 * not the client-specific bytes, reproducing the paper's observation
 * that RowSel becomes compute-bound while ExpandQuery/ColTor stay
 * memory-bound.
 */

#ifndef IVE_MODEL_ROOFLINE_HH
#define IVE_MODEL_ROOFLINE_HH

#include <string>

#include "model/complexity.hh"

namespace ive {

struct GpuSpec
{
    std::string name;
    double mulOpsPerSec;   ///< Peak 32-bit integer mult throughput.
    double memBytesPerSec; ///< DRAM bandwidth.
    u64 memCapacity;       ///< Device memory.
    double tdpWatts;
    /**
     * Fraction of the theoretical roofline real kernels achieve.
     * Measured HE kernels sit well below peak (launch overheads,
     * synchronization, non-ideal access patterns); the paper's own
     * Fig. 6 plots measured points under the roofline. Calibrated so
     * the model's batched-GPU QPS lands in the paper's regime.
     */
    double rooflineEfficiency = 0.55;

    /** Paper values: 41.3 TOPS, 939 GB/s (SIII, Fig. 6). */
    static GpuSpec rtx4090();
    static GpuSpec h100();
};

struct GpuPhase
{
    double mults = 0.0;
    double bytes = 0.0;
    double seconds = 0.0;
    /** Arithmetic intensity: mults per DRAM byte. */
    double ai() const { return bytes > 0 ? mults / bytes : 0.0; }
    bool computeBound = false;
};

struct GpuPirEstimate
{
    bool feasible = true; ///< DB + batch state fit device memory.
    int batch = 1;
    GpuPhase expand;
    GpuPhase rowsel;
    GpuPhase coltor;
    double latencySec = 0.0;  ///< Per batch.
    double qps = 0.0;
    double energyPerQueryJ = 0.0;
};

/** Batched PIR estimate; batch <= 0 picks the memory-capacity max. */
GpuPirEstimate gpuEstimate(const PirParams &params, const GpuSpec &gpu,
                           int batch);

/** Largest batch whose working state fits device memory (>=0). */
int gpuMaxBatch(const PirParams &params, const GpuSpec &gpu);

} // namespace ive

#endif // IVE_MODEL_ROOFLINE_HH

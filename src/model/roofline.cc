#include "model/roofline.hh"

#include <algorithm>

#include "common/units.hh"

namespace ive {

namespace {

constexpr double kGpuWordBytes = 4.0; // u32 residues on GPU

struct GpuSizes
{
    double polyBytes;
    double ctBytes;
    double evkBytes;
    double rgswBytes;
    double dbBytes;
    double perQueryState;
};

GpuSizes
gpuSizes(const PirParams &p)
{
    double k = p.he.primes.empty() ? 4.0 : p.he.primes.size();
    GpuSizes s;
    s.polyBytes = k * p.he.n * kGpuWordBytes;
    s.ctBytes = 2 * s.polyBytes;
    s.evkBytes = p.he.ellKs * s.ctBytes;
    s.rgswBytes = 2.0 * p.he.ellRgsw * s.ctBytes;
    s.dbBytes = static_cast<double>(p.numEntries()) * p.planes *
                s.polyBytes;
    // Keys + expanded leaves + RowSel outputs (peak transient state).
    s.perQueryState = p.expansionDepth() * s.evkBytes + s.rgswBytes +
                      p.d0 * s.ctBytes +
                      static_cast<double>(u64{1} << p.d) * s.ctBytes;
    return s;
}

} // namespace

GpuSpec
GpuSpec::rtx4090()
{
    return {"RTX4090", 41.3e12, 939.0 * 1e9, 24 * GiB, 450.0, 0.55};
}

GpuSpec
GpuSpec::h100()
{
    // Published peak INT32 throughput and HBM3 bandwidth (SXM).
    return {"H100", 66.9e12, 3350.0 * 1e9, 80 * GiB, 700.0, 0.55};
}

int
gpuMaxBatch(const PirParams &params, const GpuSpec &gpu)
{
    GpuSizes s = gpuSizes(params);
    double free_bytes = static_cast<double>(gpu.memCapacity) - s.dbBytes;
    if (free_bytes <= 0)
        return 0;
    int b = static_cast<int>(free_bytes / s.perQueryState);
    return std::min(b, 64); // the paper's evaluation cap
}

GpuPirEstimate
gpuEstimate(const PirParams &params, const GpuSpec &gpu, int batch)
{
    GpuPirEstimate est;
    if (batch <= 0)
        batch = gpuMaxBatch(params, gpu);
    est.batch = batch;
    if (batch == 0 || gpuMaxBatch(params, gpu) < batch) {
        est.feasible = false;
        return est;
    }

    GpuSizes s = gpuSizes(params);
    StepComplexity c = complexity(params);

    auto phase = [&](double mults_per_q, double bytes_per_batch) {
        GpuPhase ph;
        ph.mults = mults_per_q * batch;
        ph.bytes = bytes_per_batch;
        double eff = gpu.rooflineEfficiency;
        double t_compute = ph.mults / (gpu.mulOpsPerSec * eff);
        double t_mem = ph.bytes / (gpu.memBytesPerSec * eff);
        ph.seconds = std::max(t_compute, t_mem);
        ph.computeBound = t_compute >= t_mem;
        return ph;
    };

    // ExpandQuery: evk per Subs plus ciphertext movement (per query).
    double subs = static_cast<double>(expansionSubsCount(params));
    double sel = static_cast<double>(params.d) * params.he.ellRgsw;
    double expand_bytes_q = subs * (s.evkBytes + 3 * s.ctBytes) +
                            sel * (s.rgswBytes + 3 * s.ctBytes);
    est.expand = phase(c.expand.total(), expand_bytes_q * batch);

    // RowSel: database streamed once per batch; queries and outputs
    // per query.
    double rowsel_bytes = s.dbBytes * params.planes +
                          batch * (params.d0 * s.ctBytes +
                                   static_cast<double>(u64{1} << params.d) *
                                       s.ctBytes * params.planes);
    est.rowsel = phase(c.rowsel.total(), rowsel_bytes);

    // ColTor: selector + ciphertext traffic per external product.
    double folds = static_cast<double>((u64{1} << params.d) - 1) *
                   params.planes;
    double coltor_bytes_q = folds * (s.rgswBytes / 4.0 + 3 * s.ctBytes);
    est.coltor = phase(c.coltor.total(), coltor_bytes_q * batch);

    est.latencySec =
        est.expand.seconds + est.rowsel.seconds + est.coltor.seconds;
    est.qps = batch / est.latencySec;
    // Energy: device power at a calibrated activity factor.
    est.energyPerQueryJ = est.latencySec * gpu.tdpWatts * 0.6 / batch;
    return est;
}

} // namespace ive

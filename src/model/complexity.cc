#include "model/complexity.hh"

namespace ive {

namespace {

int
numPrimes(const PirParams &p)
{
    return p.he.primes.empty() ? 4 : static_cast<int>(p.he.primes.size());
}

} // namespace

KernelMults &
KernelMults::operator+=(const KernelMults &o)
{
    ntt += o.ntt;
    gemm += o.gemm;
    icrt += o.icrt;
    elem += o.elem;
    return *this;
}

double
nttMults(const PirParams &p)
{
    double n = static_cast<double>(p.he.n);
    return numPrimes(p) * (n / 2.0) * log2Exact(p.he.n);
}

KernelMults
subsMults(const PirParams &p)
{
    double kn = static_cast<double>(numPrimes(p)) * p.he.n;
    KernelMults m;
    // iNTT of (a, b) plus NTT of the ellKs digit polynomials.
    m.ntt = (2 + p.he.ellKs) * nttMults(p);
    // iCRT reconstruction: k mults per coefficient of a.
    m.icrt = static_cast<double>(numPrimes(p)) * p.he.n;
    // evk MAC: 2*ellKs polynomial-wise MACs.
    m.elem = 2.0 * p.he.ellKs * kn;
    return m;
}

KernelMults
externalProductMults(const PirParams &p)
{
    double kn = static_cast<double>(numPrimes(p)) * p.he.n;
    KernelMults m;
    // iNTT of (a, b) plus NTT of 2*ellRgsw digit polynomials.
    m.ntt = (2 + 2 * p.he.ellRgsw) * nttMults(p);
    // iCRT on both polynomials.
    m.icrt = 2.0 * numPrimes(p) * p.he.n;
    // 2 x 2*ellRgsw matrix-vector MAC.
    m.elem = 2.0 * 2 * p.he.ellRgsw * kn;
    return m;
}

u64
expansionSubsCount(const PirParams &p)
{
    u64 used = p.usedLeaves();
    u64 count = 0;
    for (int t = 0; t < p.expansionDepth(); ++t)
        count += std::min(u64{1} << t, used);
    return count;
}

StepComplexity
complexity(const PirParams &p)
{
    StepComplexity s;
    double kn = static_cast<double>(numPrimes(p)) * p.he.n;

    // ExpandQuery: pruned Subs tree + RGSW selector assembly.
    KernelMults subs = subsMults(p);
    double n_subs = static_cast<double>(expansionSubsCount(p));
    s.expand.ntt += subs.ntt * n_subs;
    s.expand.icrt += subs.icrt * n_subs;
    s.expand.elem += subs.elem * n_subs;
    KernelMults ext = externalProductMults(p);
    double n_sel = static_cast<double>(p.d) * p.he.ellRgsw;
    s.expand.ntt += ext.ntt * n_sel;
    s.expand.icrt += ext.icrt * n_sel;
    s.expand.elem += ext.elem * n_sel;

    // RowSel: one GEMM MAC per DB word per ciphertext polynomial.
    s.rowsel.gemm = 2.0 * static_cast<double>(p.numEntries()) *
                    static_cast<double>(p.planes) * kn;

    // ColTor: 2^d - 1 external products per plane.
    double folds = static_cast<double>((u64{1} << p.d) - 1) * p.planes;
    s.coltor.ntt = ext.ntt * folds;
    s.coltor.icrt = ext.icrt * folds;
    s.coltor.elem = ext.elem * folds;
    return s;
}

} // namespace ive

/**
 * @file
 * Integer-mult complexity model (paper Fig. 4 and Fig. 7d).
 *
 * Counts the modular multiplications each PIR step performs per query,
 * broken down by kernel class ((i)NTT, GEMM, (i)CRT, element-wise).
 * The functional server's operation counters cross-validate these
 * formulas in tests.
 */

#ifndef IVE_MODEL_COMPLEXITY_HH
#define IVE_MODEL_COMPLEXITY_HH

#include "pir/params.hh"

namespace ive {

/** Mults by kernel class. */
struct KernelMults
{
    double ntt = 0.0;
    double gemm = 0.0;
    double icrt = 0.0;
    double elem = 0.0;

    double total() const { return ntt + gemm + icrt + elem; }
    KernelMults &operator+=(const KernelMults &o);
};

struct StepComplexity
{
    KernelMults expand; ///< ExpandQuery incl. RGSW selector assembly.
    KernelMults rowsel;
    KernelMults coltor;

    double
    total() const
    {
        return expand.total() + rowsel.total() + coltor.total();
    }
    double expandShare() const { return expand.total() / total(); }
    double rowselShare() const { return rowsel.total() / total(); }
    double coltorShare() const { return coltor.total() / total(); }
};

/** Per-query mult counts for the given parameters. */
StepComplexity complexity(const PirParams &params);

/** Mults of one R_Q-polynomial NTT. */
double nttMults(const PirParams &params);

/** Mults of one Subs operation. */
KernelMults subsMults(const PirParams &params);

/** Mults of one external product. */
KernelMults externalProductMults(const PirParams &params);

/** Number of Subs ops ExpandQuery performs (pruned tree). */
u64 expansionSubsCount(const PirParams &params);

} // namespace ive

#endif // IVE_MODEL_COMPLEXITY_HH

#include "model/cost.hh"

namespace ive {

namespace {

// Calibration constants (7nm, 1 GHz). With the default IveConfig these
// reproduce Table II: sysNTTU 0.77 mm^2 / 2.17 W per core (2 units),
// iCRTU 0.05/0.13, EWU 0.10/0.37, AutoU 0.07/0.11, RF & buffers
// 1.38/1.63, core 2.91/5.12, 32 cores 93.1/163.8, NoC 2.6/6.7,
// HBM 59.6/68.6, total 155.3/239.1.
constexpr double kNttUnitArea = 0.3797;  // one NTT pipeline, special primes
constexpr double kNttUnitWatts = 1.070;
constexpr double kSysNttuOverhead = 1.014; // GEMM muxes (SVI-C: +1.4%)
constexpr double kGemmArrayArea = 0.170;   // standalone 32x16 array
constexpr double kGemmArrayWatts = 0.50;
constexpr double kMaduArea = 0.050;        // ARK-style multiply-add unit
constexpr double kMaduWatts = 0.180;
constexpr double kIcrtuArea = 0.05, kIcrtuWatts = 0.13;
constexpr double kEwuArea = 0.10, kEwuWatts = 0.37;
constexpr double kAutouArea = 0.07, kAutouWatts = 0.11;
constexpr double kSramAreaPerMiB = 0.2831; // 4.875 MiB -> 1.38 mm^2
constexpr double kSramWattsPerMiB = 0.3344;
constexpr double kOtherArea = 0.54, kOtherWatts = 0.71;
constexpr double kNocAreaPerCore = 2.6 / 32, kNocWattsPerCore = 6.7 / 32;
constexpr double kHbmArea = 59.6, kHbmWatts = 68.6;
/** Generic-prime modular multipliers are 1/0.909 larger (SIV-G). */
constexpr double kGenericPrimePenalty = 1.0 / 0.909;

} // namespace

ChipCost
chipCost(const IveConfig &cfg)
{
    ChipCost c;
    double mul = cfg.specialPrimes ? 1.0 : kGenericPrimePenalty;

    // NTT / GEMM engines.
    ComponentCost ntt_engines;
    if (cfg.unifiedNttGemm) {
        ntt_engines.name = "sysNTTU";
        ntt_engines.areaMm2 = cfg.sysNttuPerCore * kNttUnitArea *
                              kSysNttuOverhead * mul;
        ntt_engines.watts = cfg.sysNttuPerCore * kNttUnitWatts *
                            kSysNttuOverhead * mul;
    } else {
        // Separate NTT pipelines plus either standalone GEMM arrays of
        // matching throughput (Base ablation) or MADUs (ARK-like).
        ntt_engines.name = "NTTU+GEMM";
        ntt_engines.areaMm2 = cfg.sysNttuPerCore * kNttUnitArea * mul;
        ntt_engines.watts = cfg.sysNttuPerCore * kNttUnitWatts * mul;
        if (cfg.maduGemmMacsPerCycle <= 128.0) {
            int madus =
                static_cast<int>(cfg.maduGemmMacsPerCycle / 64.0);
            ntt_engines.areaMm2 += madus * kMaduArea * mul;
            ntt_engines.watts += madus * kMaduWatts * mul;
        } else {
            ntt_engines.areaMm2 += cfg.sysNttuPerCore * kGemmArrayArea *
                                   mul;
            ntt_engines.watts += cfg.sysNttuPerCore * kGemmArrayWatts *
                                 mul;
        }
    }
    c.perCore.push_back(ntt_engines);

    c.perCore.push_back({"iCRTU", kIcrtuArea * mul, kIcrtuWatts * mul});
    c.perCore.push_back({"EWU", kEwuArea * mul, kEwuWatts * mul});
    c.perCore.push_back({"AutoU", kAutouArea, kAutouWatts});

    double sram_mib =
        static_cast<double>(cfg.rfBytes + cfg.icrtBufBytes +
                            cfg.dbBufBytes) /
        (1024.0 * 1024.0);
    c.perCore.push_back({"RF & buffers", sram_mib * kSramAreaPerMiB,
                         sram_mib * kSramWattsPerMiB});
    c.perCore.push_back({"other", kOtherArea, kOtherWatts});

    for (const auto &comp : c.perCore) {
        c.coreAreaMm2 += comp.areaMm2;
        c.coreWatts += comp.watts;
    }
    c.coresAreaMm2 = c.coreAreaMm2 * cfg.cores;
    c.coresWatts = c.coreWatts * cfg.cores;
    c.nocAreaMm2 = kNocAreaPerCore * cfg.cores;
    c.nocWatts = kNocWattsPerCore * cfg.cores;
    c.hbmAreaMm2 = kHbmArea;
    c.hbmWatts = kHbmWatts;
    c.totalAreaMm2 = c.coresAreaMm2 + c.nocAreaMm2 + c.hbmAreaMm2;
    c.totalWatts = c.coresWatts + c.nocWatts + c.hbmWatts;
    return c;
}

double
edap(double energy_j, double delay_s, double area_mm2)
{
    return energy_j * delay_s * area_mm2;
}

} // namespace ive
